// Online profiling (Section 4.4 of the paper): "instead of processing
// traces we generate the TRGs during program execution using
// instrumentation techniques." Instead of recording a trace to disk and
// post-processing it, an instrumented program feeds procedure activations
// into a TRG builder as they happen; the graphs are ready the moment the
// run ends and no trace is ever materialized.
//
// This example plays the role of the instrumented program: a small
// interpreter loop "executes" a synthetic workload and calls Observe on
// every activation, then places the program from the online TRGs and
// verifies the result matches the batch (trace-file) pipeline exactly.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/popular"
	"repro/internal/program"
	"repro/internal/trace"
	"repro/internal/trg"
)

func main() {
	log.SetFlags(0)

	prog := program.MustNew([]program.Procedure{
		{Name: "dispatch", Size: 768},
		{Name: "op_add", Size: 384},
		{Name: "op_mul", Size: 512},
		{Name: "op_load", Size: 640},
		{Name: "op_store", Size: 640},
		{Name: "gc", Size: 3072},
		{Name: "startup", Size: 2048},
	})
	cfg := cache.Config{SizeBytes: 2048, LineBytes: 32, Assoc: 1}

	// The "instrumentation hook": every simulated procedure entry calls
	// builder.Observe. We also mirror the activations into a trace so the
	// example can verify online == batch at the end; a real deployment
	// would skip that.
	builder, err := trg.NewBuilder(prog, trg.Options{CacheBytes: cfg.SizeBytes}, false)
	if err != nil {
		log.Fatal(err)
	}
	mirror := &trace.Trace{}
	observe := func(name string, extent int32) {
		id, ok := prog.Lookup(name)
		if !ok {
			log.Fatalf("unknown procedure %s", name)
		}
		e := trace.Event{Proc: id, Extent: extent}
		builder.Observe(e)
		mirror.Append(e)
	}

	// The instrumented "program run": a bytecode interpreter dispatching
	// opcodes, with an occasional GC pause.
	rng := rand.New(rand.NewSource(42))
	observe("startup", 0)
	ops := []string{"op_add", "op_mul", "op_load", "op_store"}
	for i := 0; i < 5000; i++ {
		observe("dispatch", 256)
		observe(ops[rng.Intn(len(ops))], 0)
		if i%512 == 511 {
			observe("gc", 0)
		}
	}
	fmt.Printf("instrumented run complete: %d activations observed, no trace file written\n",
		builder.Events())

	// Place straight from the online graphs.
	pop := popular.All(prog)
	onlineLayout, err := core.Place(prog, builder.Result(), pop, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The batch pipeline over the mirrored trace must agree exactly.
	res, err := trg.Build(prog, mirror, trg.Options{CacheBytes: cfg.SizeBytes})
	if err != nil {
		log.Fatal(err)
	}
	batchLayout, err := core.Place(prog, res, pop, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for p := 0; p < prog.NumProcs(); p++ {
		if onlineLayout.Addr(program.ProcID(p)) != batchLayout.Addr(program.ProcID(p)) {
			log.Fatalf("online and batch placements diverge at %s", prog.Name(program.ProcID(p)))
		}
	}

	mrOpt, err := cache.MissRate(cfg, onlineLayout, mirror)
	if err != nil {
		log.Fatal(err)
	}
	mrDef, err := cache.MissRate(cfg, program.DefaultLayout(prog), mirror)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online placement identical to batch placement ✓\n")
	fmt.Printf("miss rate: default %.3f%% → online-profiled GBSC %.3f%%\n",
		100*mrDef, 100*mrOpt)
}
