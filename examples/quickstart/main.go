// Quickstart: define a tiny program, record a profile, run the
// temporal-ordering placement, and compare instruction-cache miss rates
// against the link-order default.
//
// This is the paper's Figure 1 scenario: a main loop that calls one of two
// leaf procedures depending on a condition, then always a third. A weighted
// call graph cannot tell whether the two leaves alternate; the temporal
// relationship graph can, and the placement changes accordingly.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)

	prog, err := repro.NewProgram([]repro.Procedure{
		{Name: "M", Size: 512},  // the driving loop
		{Name: "X", Size: 2048}, // leaf called while cond is true
		{Name: "Y", Size: 2048}, // leaf called while cond is false
		{Name: "Z", Size: 2048}, // leaf called every iteration
	})
	if err != nil {
		log.Fatal(err)
	}

	// Trace #2 of the paper's Figure 1: cond is true for the first 40
	// iterations and false for the last 40. X and Y never interleave.
	profile := &repro.Trace{}
	appendIter := func(leaf string) {
		for _, name := range []string{"M", leaf, "M", "Z"} {
			id, _ := prog.Lookup(name)
			profile.Append(repro.Event{Proc: id})
		}
	}
	for i := 0; i < 40; i++ {
		appendIter("X")
	}
	for i := 0; i < 40; i++ {
		appendIter("Y")
	}

	// A small cache so the example's procedures actually compete for
	// space: 4 KB direct-mapped with 32-byte lines.
	cacheCfg := repro.CacheConfig{SizeBytes: 4096, LineBytes: 32, Assoc: 1}

	defaultLayout := repro.DefaultLayout(prog)
	optimized, err := repro.Place(prog, profile, repro.Options{Cache: cacheCfg})
	if err != nil {
		log.Fatal(err)
	}

	for _, l := range []struct {
		name   string
		layout *repro.Layout
	}{{"default (link order)", defaultLayout}, {"GBSC (temporal)", optimized}} {
		mr, err := repro.MissRate(cacheCfg, l.layout, profile)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s miss rate %.3f%%\n", l.name, 100*mr)
	}

	fmt.Println("\nplacement (procedure → start address → cache line):")
	for _, name := range []string{"M", "X", "Y", "Z"} {
		id, _ := prog.Lookup(name)
		addr := optimized.Addr(id)
		fmt.Printf("  %s  @ %5d  line %3d\n", name, addr,
			(addr/cacheCfg.LineBytes)%cacheCfg.NumLines())
	}
	fmt.Println("\nX and Y map to overlapping lines (they never interleave in the")
	fmt.Println("profile), while Z — which alternates with both — gets its own lines.")
}
