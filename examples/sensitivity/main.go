// Layout sensitivity (Section 5.1 of the paper): small changes in code
// layout can cause dramatic changes in the instruction-cache miss rate. The
// paper pads every procedure of an optimized perl layout by one cache line
// and watches the miss rate jump from 3.8% to 5.4%.
//
// This example reproduces the demonstration on the synthetic perl benchmark
// and then sweeps the pad size, showing how chaotic the dependence is.
//
// Usage:
//
//	go run ./examples/sensitivity [-scale 0.5]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/popular"
	"repro/internal/tracegen"
	"repro/internal/trg"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 0.5, "trace length scale")
	flag.Parse()

	pair := tracegen.Lookup(tracegen.Suite(*scale), "perl")
	if pair == nil {
		log.Fatal("perl benchmark missing")
	}
	prog := pair.Bench.Prog
	train := pair.Bench.Trace(pair.Train)
	test := pair.Bench.Trace(pair.Test)
	cfg := cache.PaperConfig

	pop := popular.Select(prog, train, popular.Options{})
	res, err := trg.Build(prog, train, trg.Options{CacheBytes: cfg.SizeBytes, Popular: pop})
	if err != nil {
		log.Fatal(err)
	}
	layout, err := core.Place(prog, res, pop, cfg)
	if err != nil {
		log.Fatal(err)
	}

	base, err := cache.MissRate(cfg, layout, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("perl, 8KB direct-mapped cache, GBSC layout: %.3f%% miss rate\n\n", 100*base)
	fmt.Println("pad every procedure by N bytes and re-simulate the SAME layout:")
	fmt.Println("  pad    miss rate   vs base")
	for _, pad := range []int{32, 64, 96, 128, 160, 192, 224, 256} {
		mr, err := cache.MissRate(cfg, layout.PadAll(pad), test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4dB  %7.3f%%   %+6.1f%%\n", pad, 100*mr, 100*(mr-base)/base)
	}
	fmt.Println("\nA one-line pad is a trivial layout edit, yet the miss rate moves")
	fmt.Println("by double-digit percentages — the paper's argument for evaluating")
	fmt.Println("placement algorithms over distributions of randomized profiles")
	fmt.Println("rather than single runs.")
}
