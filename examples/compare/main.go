// Compare the three placement algorithms of the paper (PH, HKC, GBSC) on
// one of the synthetic Table 1 benchmarks, including a small randomized-
// profile study in the style of Figure 5.
//
// Usage:
//
//	go run ./examples/compare [-bench vortex] [-scale 0.5] [-runs 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/experiments"
	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	benchName := flag.String("bench", "vortex", "benchmark: gcc, go, ghostscript, m88ksim, perl, vortex")
	scale := flag.Float64("scale", 0.5, "trace length scale")
	runs := flag.Int("runs", 10, "perturbed profiles per algorithm")
	flag.Parse()

	if tracegen.Lookup(tracegen.Suite(*scale), *benchName) == nil {
		log.Fatalf("unknown benchmark %q", *benchName)
	}

	res, err := experiments.Figure5(experiments.Options{
		Scale:      *scale,
		Runs:       *runs,
		Seed:       1,
		Benchmarks: []string{*benchName},
	})
	if err != nil {
		log.Fatal(err)
	}
	fb := res.Benches[0]

	fmt.Printf("benchmark %s: %d randomized profiles per algorithm (s=0.1)\n\n", fb.Name, *runs)
	fmt.Println("unperturbed profiles:")
	type row struct {
		alg experiments.AlgorithmName
		mr  float64
	}
	rows := []row{
		{experiments.AlgPH, fb.Unperturbed[experiments.AlgPH]},
		{experiments.AlgHKC, fb.Unperturbed[experiments.AlgHKC]},
		{experiments.AlgGBSC, fb.Unperturbed[experiments.AlgGBSC]},
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].mr < rows[j].mr })
	for i, r := range rows {
		marker := "  "
		if i == 0 {
			marker = "← best"
		}
		fmt.Printf("  %-5s %.3f%% %s\n", r.alg, 100*r.mr, marker)
	}

	fmt.Println("\nmiss-rate distribution over randomized profiles (min / median / max):")
	for _, alg := range []experiments.AlgorithmName{experiments.AlgPH, experiments.AlgHKC, experiments.AlgGBSC} {
		s := fb.Sorted[alg]
		fmt.Printf("  %-5s %.3f%% / %.3f%% / %.3f%%\n",
			alg, 100*s[0], 100*s[len(s)/2], 100*s[len(s)-1])
	}

	fmt.Println("\nASCII CDF (x = miss rate, each row one algorithm; '*' marks runs):")
	lo, hi := 1.0, 0.0
	for _, alg := range []experiments.AlgorithmName{experiments.AlgPH, experiments.AlgHKC, experiments.AlgGBSC} {
		s := fb.Sorted[alg]
		if s[0] < lo {
			lo = s[0]
		}
		if s[len(s)-1] > hi {
			hi = s[len(s)-1]
		}
	}
	const width = 64
	for _, alg := range []experiments.AlgorithmName{experiments.AlgPH, experiments.AlgHKC, experiments.AlgGBSC} {
		line := make([]byte, width+1)
		for i := range line {
			line[i] = ' '
		}
		for _, mr := range fb.Sorted[alg] {
			pos := 0
			if hi > lo {
				pos = int(float64(width) * (mr - lo) / (hi - lo))
			}
			line[pos] = '*'
		}
		fmt.Printf("  %-5s |%s|\n", alg, string(line))
	}
	fmt.Printf("         %.3f%%%*s%.3f%%\n", 100*lo, width-8, "", 100*hi)
}
