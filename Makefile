# Development and CI entry points. `make ci` is the gate every change must
# pass: vet, build, the full test suite under the race detector (the
# experiment worker pool runs concurrently in several tests, so -race is
# mandatory, not optional), and one iteration of every benchmark as a smoke
# test of the measurement loop.

GO ?= go

.PHONY: ci vet build test race bench experiments

ci: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Regenerate the full paper evaluation (EXPERIMENTS.md numbers).
experiments:
	$(GO) run ./cmd/experiments -run all -scale 1.0 -runs 40
