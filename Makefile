# Development and CI entry points. `make ci` is the gate every change must
# pass: formatting, vet + the custom lint suite, build, the full test suite
# under the race detector (the experiment worker pool runs concurrently in
# several tests, so -race is mandatory, not optional), and one iteration of
# every benchmark as a smoke test of the measurement loop.

GO ?= go

.PHONY: ci fmt fmt-check vet lint build test race bench bench-json experiments golden-smoke

ci: fmt-check vet lint build race bench

fmt:
	gofmt -w .

# Fails listing the offending files if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Custom analyzers (tools/analyzers): determinism rules over the pipeline
# packages and the run()-pattern/Close-error rules over cmd binaries. The
# selftest proves the analyzers still catch the known-bad fixtures before
# the clean repo run is trusted.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/repolint -selftest
	$(GO) run ./cmd/repolint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Machine-readable record of the pipeline hot paths (ns/op, B/op,
# allocs/op): the Section 4.4 merge-loop benchmarks plus the selector/
# scorer micro-benchmarks and the trace-replay engine benchmarks,
# converted to JSON by cmd/benchjson and committed as BENCH_gbsc.json so
# the perf trajectory is tracked per change. Override BENCHTIME (e.g.
# BENCHTIME=1x in CI) to trade precision for speed.
BENCHTIME ?= 1s
GBSC_BENCHES = ^(BenchmarkHeaviestEdge|BenchmarkBestAlignment|BenchmarkBestAlignmentAssoc|BenchmarkMergeNodes|BenchmarkGBSCPlacement|BenchmarkRunTrace|BenchmarkRunTraceClassified|BenchmarkCompileTrace)$$

# TRG ingest throughput (BENCH_trg.json): serial vs sharded build in
# events/sec on the paper-scale vortex trace, plus the sequential
# coordinator scan whose throughput bounds the sharded speedup (Amdahl).
TRG_BENCHES = ^(BenchmarkTRGBuildSerial|BenchmarkTRGBuildSharded8|BenchmarkShardCoordinatorScan)$$

# Sampled evaluation (BENCH_sample.json): the exact-vs-sampled per-layout
# replay pair on the scale-1.0 trace (the ≥10× speedup headline), plan
# construction, and the sampled Figure 5 grid end to end.
SAMPLE_BENCHES = ^(BenchmarkSampledFigure5|BenchmarkSamplePlan|BenchmarkExactMissRate|BenchmarkSampledMissRate)$$

# Static must/may bounds (BENCH_static.json): model construction, the
# per-layout Analyze screening cost vs the exact replay it replaces, and
# the staticbounds experiment grid end to end.
STATIC_BENCHES = ^(BenchmarkStaticModel|BenchmarkStaticAnalyze|BenchmarkStaticExactReplay|BenchmarkStaticBoundsGrid)$$

# Incremental re-placement (BENCH_incr.json): one delta-driven engine
# Update on the drifted paper-scale perl profile vs the from-scratch GBSC
# run it replaces. The acceptance headline is Incremental ≥5× faster than
# Scratch at ≤5% select-weight drift (the fixture reports its drift%).
INCR_BENCHES = ^(BenchmarkIncrementalReplace|BenchmarkScratchReplace)$$

# Layout-batched replay (BENCH_batch.json): the 16-lane batched walk vs
# 16 sequential RunCompiled walks of the same GBSC layout panel (the ≥3×
# layout·events/sec headline), and the batched+abandoning exhaustive
# search vs its frozen serial baseline (the ≥2× wall-time headline).
BATCH_BENCHES = ^(BenchmarkRunCompiledSerial16|BenchmarkRunCompiledBatch16|BenchmarkOptimalSearchSerial|BenchmarkOptimalSearchBatched)$$

bench-json:
	$(GO) test -run '^$$' -bench '$(GBSC_BENCHES)' -benchmem \
		-benchtime=$(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_gbsc.json
	$(GO) test -run '^$$' -bench '$(TRG_BENCHES)' -benchmem \
		-benchtime=$(BENCHTIME) . ./internal/trg/ | $(GO) run ./cmd/benchjson > BENCH_trg.json
	$(GO) test -run '^$$' -bench '$(SAMPLE_BENCHES)' -benchmem \
		-benchtime=$(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_sample.json
	$(GO) test -run '^$$' -bench '$(STATIC_BENCHES)' -benchmem \
		-benchtime=$(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_static.json
	$(GO) test -run '^$$' -bench '$(INCR_BENCHES)' -benchmem \
		-benchtime=$(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_incr.json
	$(GO) test -run '^$$' -bench '$(BATCH_BENCHES)' -benchmem \
		-benchtime=$(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_batch.json

# Regenerate the full paper evaluation (EXPERIMENTS.md numbers).
experiments:
	$(GO) run ./cmd/experiments -run all -scale 1.0 -runs 40

# Regenerate the small-scale golden CI checks against (ci_smoke_output.txt).
# CI re-runs this and fails on any diff, so commit the refreshed file
# whenever an intentional change moves the numbers.
golden-smoke:
	$(GO) run ./cmd/experiments -run all -scale 0.05 -runs 3 -seed 1 \
		-check fatal -stats ci-run-report.json > ci_smoke_output.txt
