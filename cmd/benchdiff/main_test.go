package main

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry/report"
)

// writeReport serializes r to a file under dir and returns its path.
func writeReport(t *testing.T, dir, name string, r *report.Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Write(f, r); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// runMain invokes run() with a fresh flag set, as the command line would.
func runMain(t *testing.T, args ...string) error {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	defer func() { os.Args, flag.CommandLine = oldArgs, oldFlags }()
	flag.CommandLine = flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	os.Args = append([]string{"benchdiff"}, args...)
	return run()
}

func TestAllowNewKeysFlag(t *testing.T) {
	dir := t.TempDir()
	base := report.New("experiments")
	base.AddMissRate("perl", "GBSC", 0.0123)
	cand := report.New("experiments")
	cand.AddMissRate("perl", "GBSC", 0.0123)
	cand.AddMissRate("vortex", "GBSC", 0.02) // additive: new benchmark
	oldPath := writeReport(t, dir, "old.json", base)
	newPath := writeReport(t, dir, "new.json", cand)

	if err := runMain(t, oldPath, newPath); !errors.Is(err, errDrift) {
		t.Errorf("added benchmark without -allow-new-keys: err = %v, want drift", err)
	}
	if err := runMain(t, "-allow-new-keys", oldPath, newPath); err != nil {
		t.Errorf("added benchmark with -allow-new-keys: err = %v, want nil", err)
	}
	// Shrinking coverage still drifts: swap old and new so the vortex
	// section is missing from the candidate.
	if err := runMain(t, "-allow-new-keys", newPath, oldPath); !errors.Is(err, errDrift) {
		t.Errorf("removed benchmark with -allow-new-keys: err = %v, want drift", err)
	}
}

func TestUsageErrors(t *testing.T) {
	if err := runMain(t, "only-one.json"); err == nil || errors.Is(err, errDrift) {
		t.Errorf("one argument: err = %v, want usage error", err)
	}
	if err := runMain(t, "missing-a.json", "missing-b.json"); err == nil || errors.Is(err, errDrift) {
		t.Errorf("missing files: err = %v, want I/O error", err)
	}
}
