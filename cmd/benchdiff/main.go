// Command benchdiff compares two run reports produced by the -stats flag
// of cmd/experiments (or cmd/cachesim, cmd/tracegen) and exits nonzero on
// drift: any miss-rate change beyond -miss-tol, any deterministic counter
// or histogram change beyond -counter-tol, and — only when -timing-tol is
// set — any timer whose total regressed by more than that fraction.
//
// This is the artifact gate the CI pipeline runs between a baseline report
// and a candidate report:
//
//	benchdiff BENCH_main.json BENCH_pr.json
//	benchdiff -timing-tol 0.25 BENCH_main.json BENCH_pr.json
//
// -within-ci compares a sampled run against an exact one: each miss-rate
// cell may differ by the confidence half-width recorded under its
// "<alg>/ci" key (cells without one fall back to -miss-tol), and the
// counter/histogram/timer sections are skipped — sampling legitimately
// replays different amounts of work. This is the CI gate asserting every
// sampled estimate honors its own error bound:
//
//	benchdiff -within-ci run-report.json run-report-sampled.json
//
// -allow-new-keys tolerates additive evolution: benchmarks and miss-rate
// cells present only in the new report become informational notes instead
// of drift, so a PR that adds an experiment passes against the old
// baseline. Keys present in the old report but missing from the new one
// still drift — coverage must never silently shrink:
//
//	benchdiff -allow-new-keys BENCH_main.json BENCH_pr.json
//
// Exit status: 0 no drift, 1 drift, 2 usage or I/O error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/telemetry/report"
)

// errDrift marks the "comparison ran fine, the reports disagree" outcome,
// which exits 1; every other error is a usage or I/O failure and exits 2.
var errDrift = errors.New("reports drifted")

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	if err := run(); err != nil {
		if errors.Is(err, errDrift) {
			os.Exit(1)
		}
		log.Print(err)
		os.Exit(2)
	}
}

func run() error {
	missTol := flag.Float64("miss-tol", 0, "absolute miss-rate drift tolerated per benchmark/algorithm cell (0 = exact)")
	counterTol := flag.Float64("counter-tol", 0, "relative counter/histogram drift tolerated (0 = exact)")
	timingTol := flag.Float64("timing-tol", 0, "fractional timing regression tolerated; 0 disables timing comparison (timings are machine-dependent)")
	withinCI := flag.Bool("within-ci", false, "tolerate each miss-rate cell's recorded <alg>/ci confidence half-width and skip counters/histograms/timers (sampled-vs-exact gate)")
	allowNewKeys := flag.Bool("allow-new-keys", false, "tolerate benchmarks and miss-rate cells present only in the new report (additive evolution); keys missing from the new report still drift")
	verbose := flag.Bool("v", false, "also print informational notes, not just drift")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [flags] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		return errors.New("expected exactly two report files")
	}

	oldRep, err := readReport(flag.Arg(0))
	if err != nil {
		return err
	}
	newRep, err := readReport(flag.Arg(1))
	if err != nil {
		return err
	}

	findings := report.Diff(oldRep, newRep, report.DiffOptions{
		MissRateTol:  *missTol,
		CounterTol:   *counterTol,
		TimingTol:    *timingTol,
		WithinCI:     *withinCI,
		AllowNewKeys: *allowNewKeys,
	})
	// Every drift finding is printed before the verdict: one run names all
	// drifting keys and aspects, rather than surfacing them one at a time.
	drift := 0
	for _, f := range findings {
		if f.Drift {
			drift++
			fmt.Println(f)
		} else if *verbose {
			fmt.Println(f)
		}
	}
	if drift > 0 {
		fmt.Printf("benchdiff: %d drift finding(s) between %s and %s\n", drift, flag.Arg(0), flag.Arg(1))
		return errDrift
	}
	fmt.Printf("benchdiff: no drift between %s and %s\n", flag.Arg(0), flag.Arg(1))
	return nil
}

func readReport(path string) (*report.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := report.Read(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
