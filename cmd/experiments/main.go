// Command experiments regenerates the paper's tables and figures on the
// synthetic benchmark suite.
//
// Usage:
//
//	experiments -run all
//	experiments -run table1,figure5 -scale 1.0 -runs 40
//	experiments -run figure6 -csv fig6.csv
//	experiments -run all -parallel 1   # serial; output identical to parallel
//
// Available experiments: table1, figure5, figure6, padding, sameinput,
// setassoc, ablations, all.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	run := flag.String("run", "all", "comma-separated experiments to run")
	scale := flag.Float64("scale", 1.0, "trace length scale factor")
	runs := flag.Int("runs", 40, "perturbed runs per algorithm (figure 5)")
	seed := flag.Int64("seed", 1, "randomization seed")
	benches := flag.String("bench", "", "comma-separated benchmark filter (default all six)")
	csvPath := flag.String("csv", "", "also write figure 6 points as CSV to this path")
	parallel := flag.Int("parallel", 0, "experiment worker count (0 = one per CPU, 1 = serial); output is identical at every setting")
	flag.Parse()

	opts := experiments.Options{Scale: *scale, Runs: *runs, Seed: *seed, Parallel: *parallel}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]

	type step struct {
		name string
		fn   func() error
	}
	steps := []step{
		{"table1", func() error {
			r, err := experiments.Table1(opts)
			if err != nil {
				return err
			}
			fmt.Println("== Table 1: benchmark details ==")
			return r.Render(os.Stdout)
		}},
		{"figure5", func() error {
			r, err := experiments.Figure5(opts)
			if err != nil {
				return err
			}
			if err := r.Render(os.Stdout); err != nil {
				return err
			}
			if *csvPath != "" {
				f, err := os.Create(*csvPath)
				if err != nil {
					return err
				}
				defer f.Close()
				return r.WriteCSV(f)
			}
			return nil
		}},
		{"figure6", func() error {
			r, err := experiments.Figure6(opts)
			if err != nil {
				return err
			}
			if err := r.Render(os.Stdout); err != nil {
				return err
			}
			if *csvPath != "" {
				f, err := os.Create(*csvPath)
				if err != nil {
					return err
				}
				defer f.Close()
				fmt.Fprintln(f, "missrate,trg_metric,wcg_metric")
				for _, p := range r.Points {
					fmt.Fprintf(f, "%.6f,%d,%d\n", p.MissRate, p.TRGMetric, p.WCGMetric)
				}
			}
			return nil
		}},
		{"padding", func() error {
			r, err := experiments.Padding(opts)
			if err != nil {
				return err
			}
			return r.Render(os.Stdout)
		}},
		{"sameinput", func() error {
			r, err := experiments.SameInput(opts)
			if err != nil {
				return err
			}
			return r.Render(os.Stdout)
		}},
		{"setassoc", func() error {
			r, err := experiments.SetAssoc(opts)
			if err != nil {
				return err
			}
			return r.Render(os.Stdout)
		}},
		{"ablations", func() error {
			r, err := experiments.Ablations(opts)
			if err != nil {
				return err
			}
			return r.Render(os.Stdout)
		}},
		{"pagelocal", func() error {
			r, err := experiments.PageLocality(opts)
			if err != nil {
				return err
			}
			return r.Render(os.Stdout)
		}},
		{"conflicts", func() error {
			r, err := experiments.Conflicts(opts)
			if err != nil {
				return err
			}
			return r.Render(os.Stdout)
		}},
		{"splitting", func() error {
			r, err := experiments.Splitting(opts)
			if err != nil {
				return err
			}
			return r.Render(os.Stdout)
		}},
		{"sweep", func() error {
			r, err := experiments.CacheSweep(opts)
			if err != nil {
				return err
			}
			return r.Render(os.Stdout)
		}},
		{"optimality", func() error {
			r, err := experiments.Optimality(opts)
			if err != nil {
				return err
			}
			return r.Render(os.Stdout)
		}},
		{"blockreorder", func() error {
			r, err := experiments.BlockReorder(opts)
			if err != nil {
				return err
			}
			return r.Render(os.Stdout)
		}},
		{"headroom", func() error {
			r, err := experiments.Headroom(opts)
			if err != nil {
				return err
			}
			return r.Render(os.Stdout)
		}},
	}

	ran := 0
	for _, s := range steps {
		if !all && !want[s.name] {
			continue
		}
		if err := s.fn(); err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		log.Fatalf("no experiments matched %q", *run)
	}
}
