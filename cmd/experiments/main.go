// Command experiments regenerates the paper's tables and figures on the
// synthetic benchmark suite.
//
// Usage:
//
//	experiments -run all
//	experiments -run table1,figure5 -scale 1.0 -runs 40
//	experiments -run figure6 -csv fig6.csv
//	experiments -run all -parallel 1   # serial; output identical to parallel
//	experiments -run all -shards 8     # sharded TRG builds; output identical
//	experiments -run all -stats report.json -cpuprofile cpu.pprof
//
// Available experiments: table1, figure5, figure6, padding, sameinput,
// setassoc, ablations, sampling, staticbounds, driftreplace, all.
//
// staticbounds compares the static must/may interval (internal/staticcache)
// against the exact replay of every (benchmark, algorithm) layout; under
// -check fatal an interval that fails to bracket its exact run aborts the
// run — the smoke run's soundness gate.
//
// -sample switches the Figure 5 grid from exact compiled replay to the
// phase-aware sampled estimator (internal/sample); every reported miss
// rate becomes an estimate whose confidence half-width lands in the run
// report under the "<alg>/ci" key, and cmd/benchdiff -within-ci gates a
// sampled report against an exact one cell by cell. The sampling
// experiment itself always measures both paths and is unaffected by the
// flag.
//
// With -stats, the run emits a versioned JSON run report (see
// internal/telemetry/report) holding per-benchmark miss rates, pipeline
// counters and histograms (all identical at every -parallel setting), and
// wall/CPU timings. cmd/benchdiff compares two such reports.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/invariant"
	"repro/internal/telemetry"
	"repro/internal/telemetry/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	run := flag.String("run", "all", "comma-separated experiments to run")
	scale := flag.Float64("scale", 1.0, "trace length scale factor")
	runs := flag.Int("runs", 40, "perturbed runs per algorithm (figure 5)")
	seed := flag.Int64("seed", 1, "randomization seed")
	benches := flag.String("bench", "", "comma-separated benchmark filter (default all six)")
	csvPath := flag.String("csv", "", "also write figure 6 points as CSV to this path")
	parallel := flag.Int("parallel", 0, "experiment worker count (0 = one per CPU, 1 = serial); output is identical at every setting")
	shards := flag.Int("shards", 0, "TRG build shards per benchmark (0 or 1 = serial builder); output is identical at every setting")
	statsPath := flag.String("stats", "", "write a JSON run report to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path")
	checkFlag := flag.String("check", "fatal", "layout/TRG invariant checking: fatal, warn, or off")
	sampleFlag := flag.Bool("sample", false, "score figure 5 layouts with the phase-aware sampled estimator instead of exact replay; estimates carry <alg>/ci half-widths in the run report")
	sampleWindows := flag.Int("sample-windows", 0, "sampled windows per trace (0 = default 12)")
	sampleInterval := flag.Int("sample-interval", 0, "sampled window length in events (0 = derive from trace length)")
	batch := flag.Int("batch", 0, "batched replay lane width for the multi-layout drivers (0 = default 16, 1 = serial engine); reported rates are identical at every setting")
	flag.Parse()

	checkMode, err := invariant.ParseMode(*checkFlag)
	if err != nil {
		return err
	}

	stopProf, err := telemetry.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			log.Printf("profiles: %v", perr)
		}
	}()

	opts := experiments.Options{
		Scale: *scale, Runs: *runs, Seed: *seed, Parallel: *parallel, Shards: *shards, Check: checkMode,
		Sample: *sampleFlag, SampleWindows: *sampleWindows, SampleInterval: *sampleInterval,
		BatchLanes: *batch,
	}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}

	// Telemetry is collected only when a report is requested; a nil
	// registry makes every recording call a no-op.
	var rep *report.Report
	if *statsPath != "" {
		opts.Telemetry = telemetry.NewRegistry()
		rep = report.New("experiments")
		rep.Params["run"] = *run
		rep.Params["scale"] = strconv.FormatFloat(*scale, 'g', -1, 64)
		rep.Params["runs"] = strconv.Itoa(*runs)
		rep.Params["seed"] = strconv.FormatInt(*seed, 10)
		rep.Params["bench"] = *benches
		rep.Params["parallel"] = strconv.Itoa(*parallel)
		rep.Params["shards"] = strconv.Itoa(*shards)
		rep.Params["sample"] = strconv.FormatBool(*sampleFlag)
		rep.Params["batch"] = strconv.Itoa(*batch)
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]

	// Each step returns its typed result so the run report can pull
	// machine-gateable numbers out of it; results without such numbers
	// pass through experiments.Record as a no-op.
	type step struct {
		name string
		fn   func() (any, error)
	}
	steps := []step{
		{"table1", func() (any, error) {
			r, err := experiments.Table1(opts)
			if err != nil {
				return nil, err
			}
			fmt.Println("== Table 1: benchmark details ==")
			return r, r.Render(os.Stdout)
		}},
		{"figure5", func() (any, error) {
			r, err := experiments.Figure5(opts)
			if err != nil {
				return nil, err
			}
			if err := r.Render(os.Stdout); err != nil {
				return nil, err
			}
			if *csvPath != "" {
				if err := writeFile(*csvPath, r.WriteCSV); err != nil {
					return nil, err
				}
			}
			return r, nil
		}},
		{"figure6", func() (any, error) {
			r, err := experiments.Figure6(opts)
			if err != nil {
				return nil, err
			}
			if err := r.Render(os.Stdout); err != nil {
				return nil, err
			}
			if *csvPath != "" {
				err := writeFile(*csvPath, func(f io.Writer) error {
					if _, err := fmt.Fprintln(f, "missrate,trg_metric,wcg_metric"); err != nil {
						return err
					}
					for _, p := range r.Points {
						if _, err := fmt.Fprintf(f, "%.6f,%d,%d\n", p.MissRate, p.TRGMetric, p.WCGMetric); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
			}
			return r, nil
		}},
		{"padding", func() (any, error) { return render(experiments.Padding(opts)) }},
		{"sameinput", func() (any, error) { return render(experiments.SameInput(opts)) }},
		{"setassoc", func() (any, error) { return render(experiments.SetAssoc(opts)) }},
		{"ablations", func() (any, error) { return render(experiments.Ablations(opts)) }},
		{"pagelocal", func() (any, error) { return render(experiments.PageLocality(opts)) }},
		{"conflicts", func() (any, error) { return render(experiments.Conflicts(opts)) }},
		{"splitting", func() (any, error) { return render(experiments.Splitting(opts)) }},
		{"sweep", func() (any, error) { return render(experiments.CacheSweep(opts)) }},
		{"optimality", func() (any, error) { return render(experiments.Optimality(opts)) }},
		{"blockreorder", func() (any, error) { return render(experiments.BlockReorder(opts)) }},
		{"headroom", func() (any, error) { return render(experiments.Headroom(opts)) }},
		{"sampling", func() (any, error) { return render(experiments.Sampling(opts)) }},
		{"staticbounds", func() (any, error) { return render(experiments.StaticBounds(opts)) }},
		{"driftreplace", func() (any, error) { return render(experiments.DriftReplace(opts)) }},
	}

	ran := 0
	var stepErr error
	sh := opts.Telemetry.Shard()
	for _, s := range steps {
		if !all && !want[s.name] {
			continue
		}
		start := time.Now()
		cpu0 := telemetry.CPUSeconds()
		result, err := s.fn()
		sh.AddDuration("exp/"+s.name+"/wall", time.Since(start))
		sh.AddDuration("exp/"+s.name+"/cpu", time.Duration((telemetry.CPUSeconds()-cpu0)*1e9))
		if err != nil {
			stepErr = fmt.Errorf("%s: %w", s.name, err)
			break
		}
		experiments.Record(rep, result)
		fmt.Println()
		ran++
	}
	if stepErr == nil && ran == 0 {
		stepErr = fmt.Errorf("no experiments matched %q", *run)
	}

	// The report is written even when a step failed — a partial report
	// with failed=... beats a truncated or missing file when CI digs
	// through artifacts.
	if rep != nil {
		if stepErr != nil {
			rep.Params["failed"] = stepErr.Error()
		}
		rep.AddSnapshot(opts.Telemetry.Snapshot())
		rep.CaptureAlloc()
		if err := writeFile(*statsPath, func(f io.Writer) error { return report.Write(f, rep) }); err != nil {
			if stepErr != nil {
				return fmt.Errorf("%w (also failed writing %s: %v)", stepErr, *statsPath, err)
			}
			return err
		}
	}
	return stepErr
}

// render adapts the common "result with a Render method" experiment shape
// to a step function.
func render[T interface{ Render(w io.Writer) error }](r T, err error) (any, error) {
	if err != nil {
		return nil, err
	}
	return r, r.Render(os.Stdout)
}

// writeFile creates path, runs fill, and returns the first error among
// fill, Sync-less Close, and creation — so a full disk or closed pipe is
// reported instead of leaving a silently truncated file behind.
func writeFile(path string, fill func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = fill(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
