// Command repolint runs the repository's custom lint suite (see
// tools/analyzers): the nodeterm determinism rules over the pipeline
// packages and the runerr error-handling rules over the cmd binaries.
//
// Usage:
//
//	repolint            # lint the enclosing module, exit 1 on findings
//	repolint -selftest  # prove the analyzers still catch the known-bad fixtures
//
// The tool type-checks everything from source with the standard library
// only, so it runs in environments with no module cache or network.
package main

import (
	"errors"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/tools/analyzers"
)

// errFindings marks the "lint ran fine, the code has findings" outcome,
// which exits 1; every other error is an operational failure and exits 2.
var errFindings = errors.New("lint findings")

func main() {
	log.SetFlags(0)
	log.SetPrefix("repolint: ")
	if err := run(); err != nil {
		if errors.Is(err, errFindings) {
			os.Exit(1)
		}
		log.Fatal(err)
	}
}

func run() error {
	selftest := flag.Bool("selftest", false, "verify the analyzers flag the built-in broken fixtures, then exit")
	flag.Parse()

	if *selftest {
		if err := analyzers.SelfTest(); err != nil {
			return err
		}
		fmt.Println("repolint: selftest ok")
		return nil
	}

	root, err := findModuleRoot()
	if err != nil {
		return err
	}
	paths, err := discoverPackages(root)
	if err != nil {
		return err
	}

	ld := newLoader(root)
	var diags []analyzers.Diagnostic
	for _, path := range paths {
		if !analyzers.Applies(analyzers.All, path) {
			continue
		}
		lp := ld.load(path)
		if lp.err != nil {
			return fmt.Errorf("%s: %w", path, lp.err)
		}
		pass := &analyzers.Pass{
			Fset:  ld.fset,
			Path:  path,
			Files: lp.files,
			Pkg:   lp.pkg,
			Info:  ld.info,
		}
		diags = append(diags, analyzers.Run(pass, analyzers.All)...)
	}

	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		return fmt.Errorf("%d finding(s): %w", len(diags), errFindings)
	}
	fmt.Printf("repolint: %d packages clean\n", len(paths))
	return nil
}

// moduleName is the module this linter is built for; refusing to lint a
// different module catches running it from the wrong directory.
const moduleName = "repro"

// findModuleRoot walks up from the working directory to the go.mod that
// declares module repro.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if strings.TrimSpace(strings.TrimPrefix(line, "module")) == moduleName &&
					strings.HasPrefix(line, "module") {
					return dir, nil
				}
			}
			return "", fmt.Errorf("go.mod at %s does not declare module %s", dir, moduleName)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// discoverPackages returns the sorted import paths of every Go package
// directory under the module root, skipping hidden and testdata trees.
func discoverPackages(root string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(root, p)
				if err != nil {
					return err
				}
				if rel == "." {
					paths = append(paths, moduleName)
				} else {
					paths = append(paths, moduleName+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	sort.Strings(paths)
	return paths, err
}

// loader type-checks module packages from source, resolving module-internal
// imports recursively and everything else through the standard library's
// source importer. One FileSet and one types.Info span all packages so a
// Pass can look up any node the analyzers encounter.
type loader struct {
	root string
	fset *token.FileSet
	std  types.Importer
	info *types.Info
	pkgs map[string]*loadedPkg
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	err   error
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root: root,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
		pkgs: map[string]*loadedPkg{},
	}
}

// Import makes the loader a types.Importer for module-internal paths.
func (l *loader) Import(path string) (*types.Package, error) {
	if path != moduleName && !strings.HasPrefix(path, moduleName+"/") {
		return l.std.Import(path)
	}
	lp := l.load(path)
	return lp.pkg, lp.err
}

func (l *loader) load(path string) *loadedPkg {
	if lp, ok := l.pkgs[path]; ok {
		return lp
	}
	// Mark in-progress before recursing so an import cycle fails with a
	// clear error instead of infinite recursion.
	lp := &loadedPkg{err: fmt.Errorf("import cycle through %s", path)}
	l.pkgs[path] = lp

	dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, moduleName+"/")))
	if path == moduleName {
		dir = l.root
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		lp.err = err
		return lp
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			lp.err = err
			return lp
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		lp.err = fmt.Errorf("no Go files in %s", dir)
		return lp
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, l.info)
	lp.pkg, lp.files, lp.err = pkg, files, err
	return lp
}
