// Command tracegen generates a synthetic benchmark program and execution
// trace from the Table 1 suite and writes them to disk: the program as a
// text description (name and size per line) and the trace in the binary
// interchange format.
//
// Usage:
//
//	tracegen -bench perl -input train -scale 1.0 -out perl.trace -prog perl.prog
//	tracegen -bench perl -input train -stats report.json
//	tracegen -bench vortex -shards 8   # also build the TRG sharded, report events/sec
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"

	"time"

	"repro/internal/cache"
	"repro/internal/telemetry"
	"repro/internal/telemetry/report"
	"repro/internal/tracegen"
	"repro/internal/trg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	benchName := flag.String("bench", "perl", "benchmark name (gcc, go, ghostscript, m88ksim, perl, vortex)")
	input := flag.String("input", "train", "which input to run: train or test")
	scale := flag.Float64("scale", 1.0, "trace length scale factor")
	outTrace := flag.String("out", "", "output trace file (binary format); default <bench>-<input>.trace")
	outProg := flag.String("prog", "", "output program description; default <bench>.prog")
	statsPath := flag.String("stats", "", "write a JSON run report to this path")
	shards := flag.Int("shards", 0, "also build the TRG from the generated trace with this many shards (0 = skip, 1 = serial) and report build throughput")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path")
	flag.Parse()

	stopProf, err := telemetry.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			log.Printf("profiles: %v", perr)
		}
	}()

	pair := tracegen.Lookup(tracegen.Suite(*scale), *benchName)
	if pair == nil {
		return fmt.Errorf("unknown benchmark %q", *benchName)
	}
	in := pair.Train
	switch *input {
	case "train":
	case "test":
		in = pair.Test
	default:
		return fmt.Errorf("unknown input %q (want train or test)", *input)
	}

	if *outTrace == "" {
		*outTrace = fmt.Sprintf("%s-%s.trace", *benchName, *input)
	}
	if *outProg == "" {
		*outProg = fmt.Sprintf("%s.prog", *benchName)
	}

	var rep *report.Report
	var sh *telemetry.Shard
	if *statsPath != "" {
		reg := telemetry.NewRegistry()
		sh = reg.Shard()
		rep = report.New("tracegen")
		rep.Params["bench"] = *benchName
		rep.Params["input"] = *input
		rep.Params["scale"] = strconv.FormatFloat(*scale, 'g', -1, 64)
		defer func() {
			rep.AddSnapshot(reg.Snapshot())
			rep.CaptureAlloc()
			if werr := writeReport(*statsPath, rep); werr != nil {
				log.Printf("stats: %v", werr)
			}
		}()
	}

	tr := tracegen.Generate(pair.Bench, in, sh)

	if err := writeTo(*outTrace, tr.WriteBinary); err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	err = writeTo(*outProg, func(f io.Writer) error {
		w := bufio.NewWriter(f)
		fmt.Fprintf(w, "# %s: %d procedures, %d bytes\n",
			pair.Bench.Name, pair.Bench.Prog.NumProcs(), pair.Bench.Prog.TotalSize())
		for _, p := range pair.Bench.Prog.Procs {
			fmt.Fprintf(w, "%s %d\n", p.Name, p.Size)
		}
		return w.Flush()
	})
	if err != nil {
		return fmt.Errorf("writing program: %w", err)
	}

	stats := tr.ComputeStats(pair.Bench.Prog, 32)
	sh.Add("tracegen/line_refs", stats.LineRefs)
	sh.Add("tracegen/unique_procs", int64(stats.UniqueProcs))
	fmt.Printf("%s/%s: %d events, %d line refs, %d procedures touched → %s, %s\n",
		*benchName, in.Name, stats.Events, stats.LineRefs, stats.UniqueProcs, *outTrace, *outProg)

	// -shards: build the TRG from the freshly generated trace through the
	// sharded ingest path and report throughput. The ingest counters
	// (trg/shard_*) land in the run report when -stats is also given.
	if *shards > 0 {
		start := time.Now()
		res, bs, err := trg.BuildSharded(pair.Bench.Prog, tr, trg.Options{
			CacheBytes: cache.PaperConfig.SizeBytes,
		}, trg.ShardOptions{Shards: *shards, Telemetry: sh})
		if err != nil {
			return fmt.Errorf("building TRG: %w", err)
		}
		wall := time.Since(start)
		sh.AddDuration("trg/build_wall", wall)
		eps := float64(bs.Events) / wall.Seconds()
		fmt.Printf("trg build (%d shards): %d events in %v (%.0f events/sec), select %d nodes/%d edges, place %d nodes/%d edges\n",
			*shards, bs.Events, wall.Round(time.Millisecond), eps,
			res.Select.NumNodes(), res.Select.NumEdges(),
			res.Place.NumNodes(), res.Place.NumEdges())
	}
	return nil
}

// writeTo creates path, runs fill, and returns the first of fill's error
// and Close's — so truncated output is an error, not a surprise.
func writeTo(path string, fill func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = fill(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeReport writes rep to path, propagating Close errors.
func writeReport(path string, rep *report.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = report.Write(f, rep)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
