// Command tracegen generates a synthetic benchmark program and execution
// trace from the Table 1 suite and writes them to disk: the program as a
// text description (name and size per line) and the trace in the binary
// interchange format.
//
// Usage:
//
//	tracegen -bench perl -input train -scale 1.0 -out perl.trace -prog perl.prog
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	benchName := flag.String("bench", "perl", "benchmark name (gcc, go, ghostscript, m88ksim, perl, vortex)")
	input := flag.String("input", "train", "which input to run: train or test")
	scale := flag.Float64("scale", 1.0, "trace length scale factor")
	outTrace := flag.String("out", "", "output trace file (binary format); default <bench>-<input>.trace")
	outProg := flag.String("prog", "", "output program description; default <bench>.prog")
	flag.Parse()

	pair := tracegen.Lookup(tracegen.Suite(*scale), *benchName)
	if pair == nil {
		log.Fatalf("unknown benchmark %q", *benchName)
	}
	in := pair.Train
	switch *input {
	case "train":
	case "test":
		in = pair.Test
	default:
		log.Fatalf("unknown input %q (want train or test)", *input)
	}

	if *outTrace == "" {
		*outTrace = fmt.Sprintf("%s-%s.trace", *benchName, *input)
	}
	if *outProg == "" {
		*outProg = fmt.Sprintf("%s.prog", *benchName)
	}

	tr := pair.Bench.Trace(in)

	tf, err := os.Create(*outTrace)
	if err != nil {
		log.Fatal(err)
	}
	defer tf.Close()
	if err := tr.WriteBinary(tf); err != nil {
		log.Fatalf("writing trace: %v", err)
	}

	pf, err := os.Create(*outProg)
	if err != nil {
		log.Fatal(err)
	}
	defer pf.Close()
	w := bufio.NewWriter(pf)
	fmt.Fprintf(w, "# %s: %d procedures, %d bytes\n",
		pair.Bench.Name, pair.Bench.Prog.NumProcs(), pair.Bench.Prog.TotalSize())
	for _, p := range pair.Bench.Prog.Procs {
		fmt.Fprintf(w, "%s %d\n", p.Name, p.Size)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	stats := tr.ComputeStats(pair.Bench.Prog, 32)
	fmt.Printf("%s/%s: %d events, %d line refs, %d procedures touched → %s, %s\n",
		*benchName, in.Name, stats.Events, stats.LineRefs, stats.UniqueProcs, *outTrace, *outProg)
}
