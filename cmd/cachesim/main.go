// Command cachesim simulates the instruction-cache behaviour of a placed
// program over a trace and reports reference, miss, and miss-rate figures.
//
// Usage:
//
//	cachesim -prog perl.prog -layout perl.layout -trace perl-test.trace
//	cachesim -prog perl.prog -trace perl-test.trace          # default layout
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cache"
	"repro/internal/program"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cachesim: ")

	progPath := flag.String("prog", "", "program description file (required)")
	layoutPath := flag.String("layout", "", "layout file (default: link-order layout)")
	tracePath := flag.String("trace", "", "binary trace file (required)")
	cacheBytes := flag.Int("cache", 8192, "cache size in bytes")
	lineBytes := flag.Int("line", 32, "cache line size in bytes")
	assoc := flag.Int("assoc", 1, "set associativity (1 = direct-mapped)")
	classify := flag.Bool("classify", false, "classify misses (cold/capacity/conflict) and attribute them to procedures (slower)")
	top := flag.Int("top", 10, "with -classify, how many worst procedures to list")
	flag.Parse()

	if *progPath == "" || *tracePath == "" {
		log.Fatal("-prog and -trace are required")
	}
	pf, err := os.Open(*progPath)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := program.ReadDescription(pf)
	pf.Close()
	if err != nil {
		log.Fatal(err)
	}

	var layout *program.Layout
	if *layoutPath == "" {
		layout = program.DefaultLayout(prog)
	} else {
		lf, err := os.Open(*layoutPath)
		if err != nil {
			log.Fatal(err)
		}
		layout, err = program.ReadLayout(lf, prog)
		lf.Close()
		if err != nil {
			log.Fatal(err)
		}
		if err := layout.Validate(); err != nil {
			log.Fatal(err)
		}
	}

	tf, err := os.Open(*tracePath)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.ReadBinary(tf)
	tf.Close()
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.Validate(prog); err != nil {
		log.Fatal(err)
	}

	cfg := cache.Config{SizeBytes: *cacheBytes, LineBytes: *lineBytes, Assoc: *assoc}
	fmt.Printf("cache: %dB, %dB lines, %d-way\n", cfg.SizeBytes, cfg.LineBytes, cfg.Assoc)

	if *classify {
		cs, err := cache.RunTraceClassified(cfg, layout, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("refs:      %d\n", cs.Refs)
		fmt.Printf("misses:    %d (cold %d, capacity %d, conflict %d)\n",
			cs.Misses, cs.Cold, cs.Capacity, cs.Conflict)
		fmt.Printf("miss rate: %.4f%%\n", 100*cs.MissRate())
		fmt.Printf("\nprocedures with the most misses:\n")
		for _, p := range cs.TopMissProcs(*top) {
			fmt.Printf("  %-30s %10d\n", prog.Name(p), cs.PerProc[p])
		}
		return
	}

	st, err := cache.RunTrace(cfg, layout, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refs:      %d\n", st.Refs)
	fmt.Printf("misses:    %d\n", st.Misses)
	fmt.Printf("miss rate: %.4f%%\n", 100*st.MissRate())
}
