// Command cachesim simulates the instruction-cache behaviour of a placed
// program over a trace and reports reference, miss, and miss-rate figures.
//
// Usage:
//
//	cachesim -prog perl.prog -layout perl.layout -trace perl-test.trace
//	cachesim -prog perl.prog -trace perl-test.trace          # default layout
//	cachesim -prog perl.prog -trace perl-test.trace -stats report.json
//	cachesim -prog perl.prog -layout a.layout,b.layout -trace perl-test.trace
//
// With a comma-separated -layout list every layout is replayed against the
// same trace: the trace is compiled once and the layouts score in batches
// of -batch lanes through one shared walk of the compiled trace each
// (internal/cache BatchSim), so comparing candidate layouts costs one
// trace load, one compilation, and a fraction of the per-layout replays.
// -batch 1 falls back to the serial engine (one reused simulator, reset
// between layouts); the printed figures are byte-identical either way.
//
// -sample replaces the exact replay with the phase-aware sampled estimator
// (internal/sample): one window plan is built from the trace and each
// layout is scored by replaying only the representative windows, printing
// the estimate with its confidence interval. With -stats the estimate is
// recorded under the usual label plus a "<label>/ci" half-width key.
//
// -static-bounds additionally prints the static must/may miss-rate
// interval (internal/staticcache) of every layout and, under -check fatal
// or warn, cross-checks it against the exact run — an interval that fails
// to bracket the simulated miss count is a soundness bug and is enforced
// like any other invariant. With -stats the bounds land under the
// "<label>/static_lower" and "<label>/static_upper" keys.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/invariant"
	"repro/internal/program"
	"repro/internal/sample"
	"repro/internal/staticcache"
	"repro/internal/telemetry"
	"repro/internal/telemetry/report"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cachesim: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	progPath := flag.String("prog", "", "program description file (required)")
	layoutPath := flag.String("layout", "", "comma-separated layout files (default: link-order layout)")
	tracePath := flag.String("trace", "", "binary trace file (required)")
	cacheBytes := flag.Int("cache", 8192, "cache size in bytes")
	lineBytes := flag.Int("line", 32, "cache line size in bytes")
	assoc := flag.Int("assoc", 1, "set associativity (1 = direct-mapped)")
	classify := flag.Bool("classify", false, "classify misses (cold/capacity/conflict) and attribute them to procedures (slower)")
	top := flag.Int("top", 10, "with -classify, how many worst procedures to list")
	statsPath := flag.String("stats", "", "write a JSON run report to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path")
	checkFlag := flag.String("check", "fatal", "layout invariant checking: fatal, warn, or off")
	sampleFlag := flag.Bool("sample", false, "estimate miss rates from sampled trace windows instead of exact replay (incompatible with -classify)")
	sampleWindows := flag.Int("sample-windows", 0, "sampled windows per trace (0 = default 12)")
	sampleInterval := flag.Int("sample-interval", 0, "sampled window length in events (0 = derive from trace length)")
	staticBounds := flag.Bool("static-bounds", false, "also compute static must/may miss-rate bounds per layout and cross-check them against the exact run (incompatible with -sample)")
	batch := flag.Int("batch", 0, "batched replay lane width for multi-layout runs (0 = default 16, 1 = serial engine); printed figures are identical at every setting")
	flag.Parse()

	checkMode, err := invariant.ParseMode(*checkFlag)
	if err != nil {
		return err
	}
	if *progPath == "" || *tracePath == "" {
		return fmt.Errorf("-prog and -trace are required")
	}
	if *sampleFlag && *classify {
		return fmt.Errorf("-sample cannot classify misses; drop one of the flags")
	}
	if *sampleFlag && *staticBounds {
		return fmt.Errorf("-static-bounds needs the exact run to cross-check against; drop -sample")
	}

	stopProf, err := telemetry.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			log.Printf("profiles: %v", perr)
		}
	}()

	pf, err := os.Open(*progPath)
	if err != nil {
		return err
	}
	prog, err := program.ReadDescription(pf)
	if cerr := pf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	// A comma-separated -layout list replays every layout against the same
	// trace; the empty string selects the link-order layout.
	layoutPaths := strings.Split(*layoutPath, ",")
	layouts := make([]*program.Layout, len(layoutPaths))
	names := make([]string, len(layoutPaths))
	for i, path := range layoutPaths {
		path = strings.TrimSpace(path)
		if path == "" {
			layouts[i] = program.DefaultLayout(prog)
			names[i] = "default"
			continue
		}
		lf, err := os.Open(path)
		if err != nil {
			return err
		}
		layout, err := program.ReadLayout(lf, prog)
		if cerr := lf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if err := layout.Validate(); err != nil {
			return err
		}
		layouts[i] = layout
		names[i] = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}

	tf, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	tr, err := trace.ReadBinary(tf)
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := tr.Validate(prog); err != nil {
		return err
	}

	cfg := cache.Config{SizeBytes: *cacheBytes, LineBytes: *lineBytes, Assoc: *assoc}
	// Universal invariants only: an externally supplied layout carries no
	// popularity or alignment claims, so gaps are legal — but duplicates,
	// overlaps, and byte loss never are.
	for i, layout := range layouts {
		vs := invariant.CheckLayout(prog, layout, invariant.LayoutOptions{Cache: cfg})
		if err := invariant.Enforce(checkMode, "cachesim/layout/"+names[i], vs, log.Printf); err != nil {
			return err
		}
	}
	fmt.Printf("cache: %dB, %dB lines, %d-way\n", cfg.SizeBytes, cfg.LineBytes, cfg.Assoc)

	var rep *report.Report
	var sh *telemetry.Shard
	if *statsPath != "" {
		reg := telemetry.NewRegistry()
		sh = reg.Shard()
		rep = report.New("cachesim")
		rep.Params["prog"] = *progPath
		rep.Params["layout"] = *layoutPath
		rep.Params["trace"] = *tracePath
		rep.Params["cache"] = strconv.Itoa(*cacheBytes)
		rep.Params["line"] = strconv.Itoa(*lineBytes)
		rep.Params["assoc"] = strconv.Itoa(*assoc)
		rep.Params["sample"] = strconv.FormatBool(*sampleFlag)
		defer func() {
			rep.AddSnapshot(reg.Snapshot())
			rep.CaptureAlloc()
			if werr := writeReport(*statsPath, rep); werr != nil {
				log.Printf("stats: %v", werr)
			}
		}()
	}
	bench := strings.TrimSuffix(filepath.Base(*progPath), filepath.Ext(*progPath))

	// The trace is compiled once and shared by every layout below; the
	// non-classified path additionally reuses one simulator across layouts
	// (RunCompiled resets it between runs).
	ct := cache.CompileTrace(prog, tr)
	multi := len(layouts) > 1
	lanes := *batch
	if lanes <= 0 {
		lanes = 16
	}
	addBatch := func(d cache.BatchStats) {
		sh.Add("cache/batch_lanes", d.Lanes)
		sh.Add("cache/batch_abandoned_lanes", d.AbandonedLanes)
		sh.Add("cache/batch_lane_events", d.LaneEvents)
		sh.Add("cache/batch_lane_events_saved", d.LaneEventsSaved)
	}
	addReplay := func(rs cache.ReplayStats) {
		sh.Add("cache/replay_events", rs.Events)
		sh.Add("cache/replay_fast_events", rs.FastEvents)
		sh.Add("cache/replay_fallback_events", rs.FallbackEvents)
		sh.Add("cache/replay_collapsed_repeats", rs.CollapsedRepeats)
		sh.Add("cache/replay_collapsed_refs", rs.CollapsedRefs)
	}
	// The report labels the single-layout run "sim" (the historical name);
	// multi-layout runs are labelled per layout.
	label := func(i int) string {
		if multi {
			return names[i]
		}
		return "sim"
	}

	// One static model serves every layout — the class graph and adjacency
	// depend only on (program, trace, geometry).
	var model *staticcache.Model
	if *staticBounds {
		model, err = staticcache.NewModel(prog, tr, cfg)
		if err != nil {
			return err
		}
	}
	// emitBounds prints the interval for one layout and enforces the
	// soundness cross-check against its exact stats.
	emitBounds := func(i int, layout *program.Layout, st cache.Stats) error {
		if model == nil {
			return nil
		}
		iv := model.Analyze(layout)
		fmt.Printf("static bounds: [%.4f%%, %.4f%%] (width %.4fpp, %.1f%% of refs classified)\n",
			100*iv.LowerRate(), 100*iv.UpperRate(), 100*iv.Width(), 100*iv.ClassifiedFrac())
		vs := staticcache.CheckBounds(iv, st)
		if err := invariant.Enforce(checkMode, "cachesim/staticbounds/"+names[i], vs, log.Printf); err != nil {
			return err
		}
		if rep != nil {
			rep.AddMissRate(bench, label(i)+"/static_lower", iv.LowerRate())
			rep.AddMissRate(bench, label(i)+"/static_upper", iv.UpperRate())
		}
		return nil
	}

	if *classify {
		for i, layout := range layouts {
			if multi {
				fmt.Printf("\n== %s ==\n", names[i])
			}
			start := time.Now()
			cs, rs, err := cache.RunCompiledClassified(cfg, ct, layout)
			if err != nil {
				return err
			}
			sh.AddDuration("cachesim/sim_wall", time.Since(start))
			fmt.Printf("refs:      %d\n", cs.Refs)
			fmt.Printf("misses:    %d (cold %d, capacity %d, conflict %d)\n",
				cs.Misses, cs.Cold, cs.Capacity, cs.Conflict)
			fmt.Printf("miss rate: %.4f%%\n", 100*cs.MissRate())
			fmt.Printf("\nprocedures with the most misses:\n")
			for _, p := range cs.TopMissProcs(*top) {
				fmt.Printf("  %-30s %10d\n", prog.Name(p), cs.PerProc[p])
			}
			sh.Add("cache/refs", cs.Refs)
			sh.Add("cache/misses", cs.Misses)
			sh.Add("cache/cold_misses", cs.Cold)
			sh.Add("cache/conflict_misses", cs.Conflict)
			addReplay(rs)
			if rep != nil {
				rep.AddMissRate(bench, label(i), cs.MissRate())
			}
			if err := emitBounds(i, layout, cs.Stats); err != nil {
				return err
			}
		}
		return nil
	}

	sim, err := cache.NewSim(cfg)
	if err != nil {
		return err
	}
	if *sampleFlag {
		plan, err := sample.NewPlan(prog, tr, cfg.LineBytes, sample.Options{
			Windows:  *sampleWindows,
			Interval: *sampleInterval,
		})
		if err != nil {
			return err
		}
		ev := sample.NewEvaluator(ct, plan)
		fmt.Printf("sampling: %d of %d windows (interval %d events, warm-up %d), replaying %.1f%% of events\n",
			len(plan.Windows), plan.Partitions, plan.Interval, plan.Warmup, 100*plan.ReplayFraction())
		// Multi-layout runs score lane-batched: each window walks once for
		// the whole chunk; the estimates are bit-identical to the serial
		// evaluator's.
		ests := make([]sample.Estimate, len(layouts))
		if multi && lanes > 1 {
			bs, err := cache.NewBatchSim(cfg)
			if err != nil {
				return err
			}
			for lo := 0; lo < len(layouts); lo += lanes {
				hi := min(lo+lanes, len(layouts))
				start := time.Now()
				before := bs.Batch()
				chunk, err := ev.MissRateBatch(bs, layouts[lo:hi])
				if err != nil {
					return err
				}
				sh.AddDuration("cachesim/sim_wall", time.Since(start))
				d := bs.Batch()
				sh.Add("cache/batch_lanes", int64(hi-lo))
				sh.Add("cache/batch_lane_events", d.LaneEvents-before.LaneEvents)
				copy(ests[lo:hi], chunk)
			}
		} else {
			for i, layout := range layouts {
				start := time.Now()
				ests[i] = ev.MissRate(sim, layout)
				sh.AddDuration("cachesim/sim_wall", time.Since(start))
			}
		}
		for i := range layouts {
			if multi {
				fmt.Printf("\n== %s ==\n", names[i])
			}
			est := ests[i]
			lo, hi := est.Interval()
			fmt.Printf("refs sampled: %d (events replayed %d)\n", est.RefsReplayed, est.EventsReplayed)
			fmt.Printf("miss rate:    %.4f%% ±%.4f%% [%.4f%%, %.4f%%]\n",
				100*est.MissRate, 100*est.CIHalf, 100*lo, 100*hi)
			sh.Add("sample/windows", int64(est.Windows))
			sh.Add("sample/events_replayed", est.EventsReplayed)
			sh.Add("sample/refs_replayed", est.RefsReplayed)
			if rep != nil {
				rep.AddMissRate(bench, label(i), est.MissRate)
				rep.AddMissRate(bench, label(i)+"/ci", est.CIHalf)
			}
		}
		return nil
	}
	// Multi-layout runs score lane-batched: each chunk shares one walk of
	// the compiled trace. The per-layout statistics are byte-identical to
	// the serial engine's, so the printed figures do not depend on -batch.
	stats := make([]cache.Stats, len(layouts))
	if multi && lanes > 1 {
		bs, err := cache.NewBatchSim(cfg)
		if err != nil {
			return err
		}
		for lo := 0; lo < len(layouts); lo += lanes {
			hi := min(lo+lanes, len(layouts))
			tables := make([]*cache.CompiledLayout, hi-lo)
			for k, layout := range layouts[lo:hi] {
				if tables[k], err = cache.CompileLayout(cfg, ct, layout); err != nil {
					return err
				}
			}
			start := time.Now()
			res, err := bs.Run(ct, tables, cache.BatchOptions{})
			if err != nil {
				return err
			}
			sh.AddDuration("cachesim/sim_wall", time.Since(start))
			addBatch(res.Batch)
			copy(stats[lo:hi], res.Stats)
		}
	} else {
		for i, layout := range layouts {
			start := time.Now()
			stats[i] = sim.RunCompiled(ct, layout)
			sh.AddDuration("cachesim/sim_wall", time.Since(start))
			addReplay(sim.Replay())
		}
	}
	for i, layout := range layouts {
		if multi {
			fmt.Printf("\n== %s ==\n", names[i])
		}
		st := stats[i]
		fmt.Printf("refs:      %d\n", st.Refs)
		fmt.Printf("misses:    %d (cold %d, conflict+capacity %d)\n", st.Misses, st.Cold, st.Conflict())
		fmt.Printf("miss rate: %.4f%%\n", 100*st.MissRate())
		sh.Add("cache/refs", st.Refs)
		sh.Add("cache/misses", st.Misses)
		sh.Add("cache/cold_misses", st.Cold)
		sh.Add("cache/conflict_misses", st.Conflict())
		if rep != nil {
			rep.AddMissRate(bench, label(i), st.MissRate())
		}
		if err := emitBounds(i, layout, st); err != nil {
			return err
		}
	}
	return nil
}

// writeReport writes rep to path, propagating Close errors so a truncated
// report never passes silently.
func writeReport(path string, rep *report.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = report.Write(f, rep)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
