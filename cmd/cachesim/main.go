// Command cachesim simulates the instruction-cache behaviour of a placed
// program over a trace and reports reference, miss, and miss-rate figures.
//
// Usage:
//
//	cachesim -prog perl.prog -layout perl.layout -trace perl-test.trace
//	cachesim -prog perl.prog -trace perl-test.trace          # default layout
//	cachesim -prog perl.prog -trace perl-test.trace -stats report.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/invariant"
	"repro/internal/program"
	"repro/internal/telemetry"
	"repro/internal/telemetry/report"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cachesim: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	progPath := flag.String("prog", "", "program description file (required)")
	layoutPath := flag.String("layout", "", "layout file (default: link-order layout)")
	tracePath := flag.String("trace", "", "binary trace file (required)")
	cacheBytes := flag.Int("cache", 8192, "cache size in bytes")
	lineBytes := flag.Int("line", 32, "cache line size in bytes")
	assoc := flag.Int("assoc", 1, "set associativity (1 = direct-mapped)")
	classify := flag.Bool("classify", false, "classify misses (cold/capacity/conflict) and attribute them to procedures (slower)")
	top := flag.Int("top", 10, "with -classify, how many worst procedures to list")
	statsPath := flag.String("stats", "", "write a JSON run report to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path")
	checkFlag := flag.String("check", "fatal", "layout invariant checking: fatal, warn, or off")
	flag.Parse()

	checkMode, err := invariant.ParseMode(*checkFlag)
	if err != nil {
		return err
	}
	if *progPath == "" || *tracePath == "" {
		return fmt.Errorf("-prog and -trace are required")
	}

	stopProf, err := telemetry.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			log.Printf("profiles: %v", perr)
		}
	}()

	pf, err := os.Open(*progPath)
	if err != nil {
		return err
	}
	prog, err := program.ReadDescription(pf)
	if cerr := pf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	var layout *program.Layout
	if *layoutPath == "" {
		layout = program.DefaultLayout(prog)
	} else {
		lf, err := os.Open(*layoutPath)
		if err != nil {
			return err
		}
		layout, err = program.ReadLayout(lf, prog)
		if cerr := lf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if err := layout.Validate(); err != nil {
			return err
		}
	}

	tf, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	tr, err := trace.ReadBinary(tf)
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := tr.Validate(prog); err != nil {
		return err
	}

	cfg := cache.Config{SizeBytes: *cacheBytes, LineBytes: *lineBytes, Assoc: *assoc}
	// Universal invariants only: an externally supplied layout carries no
	// popularity or alignment claims, so gaps are legal — but duplicates,
	// overlaps, and byte loss never are.
	vs := invariant.CheckLayout(prog, layout, invariant.LayoutOptions{Cache: cfg})
	if err := invariant.Enforce(checkMode, "cachesim/layout", vs, log.Printf); err != nil {
		return err
	}
	fmt.Printf("cache: %dB, %dB lines, %d-way\n", cfg.SizeBytes, cfg.LineBytes, cfg.Assoc)

	var rep *report.Report
	var sh *telemetry.Shard
	if *statsPath != "" {
		reg := telemetry.NewRegistry()
		sh = reg.Shard()
		rep = report.New("cachesim")
		rep.Params["prog"] = *progPath
		rep.Params["layout"] = *layoutPath
		rep.Params["trace"] = *tracePath
		rep.Params["cache"] = strconv.Itoa(*cacheBytes)
		rep.Params["line"] = strconv.Itoa(*lineBytes)
		rep.Params["assoc"] = strconv.Itoa(*assoc)
		defer func() {
			rep.AddSnapshot(reg.Snapshot())
			rep.CaptureAlloc()
			if werr := writeReport(*statsPath, rep); werr != nil {
				log.Printf("stats: %v", werr)
			}
		}()
	}
	bench := strings.TrimSuffix(filepath.Base(*progPath), filepath.Ext(*progPath))

	if *classify {
		stop := time.Now()
		cs, err := cache.RunTraceClassified(cfg, layout, tr)
		if err != nil {
			return err
		}
		sh.AddDuration("cachesim/sim_wall", time.Since(stop))
		fmt.Printf("refs:      %d\n", cs.Refs)
		fmt.Printf("misses:    %d (cold %d, capacity %d, conflict %d)\n",
			cs.Misses, cs.Cold, cs.Capacity, cs.Conflict)
		fmt.Printf("miss rate: %.4f%%\n", 100*cs.MissRate())
		fmt.Printf("\nprocedures with the most misses:\n")
		for _, p := range cs.TopMissProcs(*top) {
			fmt.Printf("  %-30s %10d\n", prog.Name(p), cs.PerProc[p])
		}
		sh.Add("cache/refs", cs.Refs)
		sh.Add("cache/misses", cs.Misses)
		sh.Add("cache/cold_misses", cs.Cold)
		sh.Add("cache/conflict_misses", cs.Conflict)
		if rep != nil {
			rep.AddMissRate(bench, "sim", cs.MissRate())
		}
		return nil
	}

	start := time.Now()
	st, err := cache.RunTrace(cfg, layout, tr)
	if err != nil {
		return err
	}
	sh.AddDuration("cachesim/sim_wall", time.Since(start))
	fmt.Printf("refs:      %d\n", st.Refs)
	fmt.Printf("misses:    %d (cold %d, conflict+capacity %d)\n", st.Misses, st.Cold, st.Conflict())
	fmt.Printf("miss rate: %.4f%%\n", 100*st.MissRate())
	sh.Add("cache/refs", st.Refs)
	sh.Add("cache/misses", st.Misses)
	sh.Add("cache/cold_misses", st.Cold)
	sh.Add("cache/conflict_misses", st.Conflict())
	if rep != nil {
		rep.AddMissRate(bench, "sim", st.MissRate())
	}
	return nil
}

// writeReport writes rep to path, propagating Close errors so a truncated
// report never passes silently.
func writeReport(path string, rep *report.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = report.Write(f, rep)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
