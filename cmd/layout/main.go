// Command layout computes a procedure placement from a program description
// and a profiling trace, writing the resulting layout as "name address"
// lines.
//
// Usage:
//
//	layout -prog perl.prog -trace perl-train.trace -alg gbsc -out perl.layout
//
// Algorithms: gbsc (the paper's temporal-ordering placement), gbsc2 (the
// Section 6 two-way set-associative variant), ph (Pettis & Hansen), hkc
// (cache-line coloring), default (link order).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/baseline"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/popular"
	"repro/internal/program"
	"repro/internal/trace"
	"repro/internal/trg"
	"repro/internal/wcg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("layout: ")

	progPath := flag.String("prog", "", "program description file (required)")
	tracePath := flag.String("trace", "", "binary trace file (required except for -alg default)")
	alg := flag.String("alg", "gbsc", "placement algorithm: gbsc, gbsc2, ph, hkc, default")
	out := flag.String("out", "", "output layout file (default stdout)")
	format := flag.String("format", "layout", "output format: layout (name address), order (symbol-ordering file), ldscript (GNU ld SECTIONS fragment)")
	cacheBytes := flag.Int("cache", 8192, "cache size in bytes")
	lineBytes := flag.Int("line", 32, "cache line size in bytes")
	chunk := flag.Int("chunk", 256, "TRG_place chunk size in bytes")
	pageAware := flag.Bool("pagelocal", false, "use the page-locality linearization (gbsc only)")
	flag.Parse()

	if *progPath == "" {
		log.Fatal("-prog is required")
	}
	pf, err := os.Open(*progPath)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := program.ReadDescription(pf)
	pf.Close()
	if err != nil {
		log.Fatal(err)
	}

	var tr *trace.Trace
	if *tracePath != "" {
		tf, err := os.Open(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		tr, err = trace.ReadBinary(tf)
		tf.Close()
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.Validate(prog); err != nil {
			log.Fatal(err)
		}
	} else if *alg != "default" {
		log.Fatalf("-trace is required for -alg %s", *alg)
	}

	cfg := cache.Config{SizeBytes: *cacheBytes, LineBytes: *lineBytes, Assoc: 1}
	if *alg == "gbsc2" {
		cfg.Assoc = 2
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	var l *program.Layout
	switch *alg {
	case "default":
		l = program.DefaultLayout(prog)
	case "ph":
		l, err = baseline.PHLayout(prog, wcg.Build(tr))
	case "hkc":
		pop := popular.Select(prog, tr, popular.Options{})
		l, err = baseline.HKC(prog, wcg.BuildFiltered(tr, pop.Contains), pop, cfg)
	case "gbsc":
		pop := popular.Select(prog, tr, popular.Options{})
		var res *trg.Result
		res, err = trg.Build(prog, tr, trg.Options{
			CacheBytes: cfg.SizeBytes, ChunkSize: *chunk, Popular: pop,
		})
		if err == nil {
			if *pageAware {
				l, err = core.PlacePageAware(prog, res, pop, cfg)
			} else {
				l, err = core.Place(prog, res, pop, cfg)
			}
		}
	case "gbsc2":
		pop := popular.Select(prog, tr, popular.Options{})
		var res *trg.Result
		var db *trg.PairDB
		res, db, err = trg.BuildPairs(prog, tr, trg.Options{
			CacheBytes: cfg.SizeBytes, ChunkSize: *chunk, Popular: pop,
		})
		if err == nil {
			l, err = core.PlaceAssoc(prog, res, db, pop, cfg)
		}
	default:
		log.Fatalf("unknown algorithm %q", *alg)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		log.Fatalf("internal error: produced invalid layout: %v", err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "layout":
		err = l.WriteLayout(w)
	case "order":
		err = l.WriteOrder(w)
	case "ldscript":
		err = l.WriteLinkerScript(w, 0x400000)
	default:
		log.Fatalf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "layout: %s over %d procedures, extent %d bytes\n",
		*alg, prog.NumProcs(), l.Extent())
}
