// Command layout computes a procedure placement from a program description
// and a profiling trace, writing the resulting layout as "name address"
// lines.
//
// Usage:
//
//	layout -prog perl.prog -trace perl-train.trace -alg gbsc -out perl.layout
//
// Algorithms: gbsc (the paper's temporal-ordering placement), gbsc2 (the
// Section 6 two-way set-associative variant), ph (Pettis & Hansen), hkc
// (cache-line coloring), default (link order).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/baseline"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/invariant"
	"repro/internal/popular"
	"repro/internal/program"
	"repro/internal/staticcache"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/trg"
	"repro/internal/wcg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("layout: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	progPath := flag.String("prog", "", "program description file (required)")
	tracePath := flag.String("trace", "", "binary trace file (required except for -alg default)")
	alg := flag.String("alg", "gbsc", "placement algorithm: gbsc, gbsc2, ph, hkc, default")
	out := flag.String("out", "", "output layout file (default stdout)")
	format := flag.String("format", "layout", "output format: layout (name address), order (symbol-ordering file), ldscript (GNU ld SECTIONS fragment)")
	cacheBytes := flag.Int("cache", 8192, "cache size in bytes")
	lineBytes := flag.Int("line", 32, "cache line size in bytes")
	chunk := flag.Int("chunk", 256, "TRG_place chunk size in bytes")
	pageAware := flag.Bool("pagelocal", false, "use the page-locality linearization (gbsc only)")
	incrFrom := flag.String("incr-from", "", "previous-profile trace file: place it first, then update incrementally to -trace via delta-driven merge-log replay (gbsc only; result is byte-identical to placing -trace from scratch)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path")
	checkFlag := flag.String("check", "fatal", "layout invariant checking: fatal, warn, or off")
	staticBounds := flag.Bool("static-bounds", false, "print the static must/may miss-rate interval of the produced layout (requires -trace)")
	flag.Parse()

	checkMode, err := invariant.ParseMode(*checkFlag)
	if err != nil {
		return err
	}
	if *progPath == "" {
		return fmt.Errorf("-prog is required")
	}

	stopProf, err := telemetry.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			log.Printf("profiles: %v", perr)
		}
	}()

	pf, err := os.Open(*progPath)
	if err != nil {
		return err
	}
	prog, err := program.ReadDescription(pf)
	if cerr := pf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	var tr *trace.Trace
	if *tracePath != "" {
		tf, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		tr, err = trace.ReadBinary(tf)
		if cerr := tf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if err := tr.Validate(prog); err != nil {
			return err
		}
	} else if *alg != "default" {
		return fmt.Errorf("-trace is required for -alg %s", *alg)
	} else if *staticBounds {
		return fmt.Errorf("-static-bounds needs -trace to bound the layout against")
	}

	if *incrFrom != "" && *alg != "gbsc" {
		return fmt.Errorf("-incr-from is only supported with -alg gbsc")
	}

	cfg := cache.Config{SizeBytes: *cacheBytes, LineBytes: *lineBytes, Assoc: 1}
	if *alg == "gbsc2" {
		cfg.Assoc = 2
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	var l *program.Layout
	// Each algorithm class claims different structural guarantees, checked
	// after the fact: packed layouts may not have gaps, the GBSC family must
	// line-align its popular procedures, HKC promises neither.
	checkOpts := invariant.LayoutOptions{Cache: cfg}
	switch *alg {
	case "default":
		l = program.DefaultLayout(prog)
		checkOpts.RequirePacked = true
	case "ph":
		l, err = baseline.PHLayout(prog, wcg.Build(tr))
		checkOpts.RequirePacked = true
	case "hkc":
		pop := popular.Select(prog, tr, popular.Options{})
		l, err = baseline.HKC(prog, wcg.BuildFiltered(tr, pop.Contains), pop, cfg)
		checkOpts.Popular = pop
	case "gbsc":
		pop := popular.Select(prog, tr, popular.Options{})
		var res *trg.Result
		res, err = trg.Build(prog, tr, trg.Options{
			CacheBytes: cfg.SizeBytes, ChunkSize: *chunk, Popular: pop,
		})
		if err == nil {
			switch {
			case *incrFrom != "":
				if *pageAware {
					return fmt.Errorf("-incr-from cannot be combined with -pagelocal")
				}
				l, err = incrLayout(prog, res, pop, cfg, *incrFrom, *chunk)
			case *pageAware:
				l, err = core.PlacePageAware(prog, res, pop, cfg)
			default:
				l, err = core.Place(prog, res, pop, cfg)
			}
			checkOpts.Popular = pop
			checkOpts.Chunker = res.Chunker
			checkOpts.RequireAlignedPopular = true
		}
	case "gbsc2":
		pop := popular.Select(prog, tr, popular.Options{})
		var res *trg.Result
		var db *trg.PairDB
		res, db, err = trg.BuildPairs(prog, tr, trg.Options{
			CacheBytes: cfg.SizeBytes, ChunkSize: *chunk, Popular: pop,
		})
		if err == nil {
			l, err = core.PlaceAssoc(prog, res, db, pop, cfg)
			checkOpts.Popular = pop
			checkOpts.Chunker = res.Chunker
			// Section 6 aligns popular procedures to set boundaries, so the
			// placement period is the set count.
			checkOpts.Period = cfg.NumSets()
			checkOpts.RequireAlignedPopular = true
		}
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}
	if err != nil {
		return err
	}
	if err := l.Validate(); err != nil {
		return fmt.Errorf("internal error: produced invalid layout: %w", err)
	}
	vs := invariant.CheckLayout(prog, l, checkOpts)
	if err := invariant.Enforce(checkMode, "layout/"+*alg, vs, log.Printf); err != nil {
		return err
	}

	emit := func(w io.Writer) error {
		switch *format {
		case "layout":
			return l.WriteLayout(w)
		case "order":
			return l.WriteOrder(w)
		case "ldscript":
			return l.WriteLinkerScript(w, 0x400000)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	if *out == "" {
		err = emit(os.Stdout)
	} else {
		var f *os.File
		if f, err = os.Create(*out); err != nil {
			return err
		}
		err = emit(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "layout: %s over %d procedures, extent %d bytes\n",
		*alg, prog.NumProcs(), l.Extent())
	if *staticBounds {
		iv, err := staticcache.Bounds(prog, tr, cfg, l)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "layout: static miss-rate bounds [%.4f%%, %.4f%%] (width %.4fpp, %.1f%% of refs classified)\n",
			100*iv.LowerRate(), 100*iv.UpperRate(), 100*iv.Width(), 100*iv.ClassifiedFrac())
	}
	return nil
}

// incrLayout places the old profile's TRG first, then updates it to the
// new profile (newRes, built from -trace) through the incremental engine —
// exercising the delta path end to end while producing a layout
// byte-identical to placing -trace from scratch. The popular set is the
// new profile's: it is the set the final layout must serve, and building
// the old TRG against it keeps the two graphs diffable.
func incrLayout(prog *program.Program, newRes *trg.Result, pop *popular.Set, cfg cache.Config, oldPath string, chunk int) (*program.Layout, error) {
	of, err := os.Open(oldPath)
	if err != nil {
		return nil, err
	}
	oldTr, err := trace.ReadBinary(of)
	if cerr := of.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	if err := oldTr.Validate(prog); err != nil {
		return nil, fmt.Errorf("-incr-from trace: %w", err)
	}
	oldRes, err := trg.Build(prog, oldTr, trg.Options{
		CacheBytes: cfg.SizeBytes, ChunkSize: chunk, Popular: pop,
	})
	if err != nil {
		return nil, err
	}
	d, err := trg.Diff(oldRes, newRes)
	if err != nil {
		return nil, err
	}
	eng, err := incr.New(prog, oldRes, pop, cfg)
	if err != nil {
		return nil, err
	}
	l, err := eng.Update(d)
	if err != nil {
		return nil, err
	}
	st := eng.Stats()
	fmt.Fprintf(os.Stderr, "layout: incremental update reused %d merges, replayed %d (%d snapshots)\n",
		st.MergesReused, st.MergesReplayed, st.Snapshots)
	return l, nil
}
