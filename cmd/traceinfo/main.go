// Command traceinfo summarizes a trace: length, reference volume, the
// hottest procedures, the popularity classification the placement
// algorithms would use, and the average temporal working set (the Q
// statistic of Table 1).
//
// Usage:
//
//	traceinfo -prog perl.prog -trace perl-train.trace [-top 15] [-cache 8192]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"repro/internal/graph"
	"repro/internal/popular"
	"repro/internal/program"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/trg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceinfo: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	progPath := flag.String("prog", "", "program description file (required)")
	tracePath := flag.String("trace", "", "binary trace file (required)")
	top := flag.Int("top", 15, "how many of the hottest procedures to list")
	cacheBytes := flag.Int("cache", 8192, "cache size for the Q statistic")
	lineBytes := flag.Int("line", 32, "cache line size in bytes")
	dotPath := flag.String("dot", "", "write TRG_select in Graphviz DOT format to this path")
	dotMin := flag.Int64("dotmin", 1, "omit TRG edges lighter than this from the DOT output")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path")
	flag.Parse()

	if *progPath == "" || *tracePath == "" {
		return fmt.Errorf("-prog and -trace are required")
	}

	stopProf, err := telemetry.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			log.Printf("profiles: %v", perr)
		}
	}()

	pf, err := os.Open(*progPath)
	if err != nil {
		return err
	}
	prog, err := program.ReadDescription(pf)
	if cerr := pf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	tf, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	tr, err := trace.ReadBinary(tf)
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := tr.Validate(prog); err != nil {
		return err
	}

	stats := tr.ComputeStats(prog, *lineBytes)
	pop := popular.Select(prog, tr, popular.Options{})
	res, err := trg.Build(prog, tr, trg.Options{CacheBytes: *cacheBytes, Popular: pop})
	if err != nil {
		return err
	}

	fmt.Printf("program:            %d procedures, %d bytes\n", prog.NumProcs(), prog.TotalSize())
	fmt.Printf("activations:        %d\n", stats.Events)
	fmt.Printf("line references:    %d (%d-byte lines)\n", stats.LineRefs, *lineBytes)
	fmt.Printf("procedures touched: %d\n", stats.UniqueProcs)
	fmt.Printf("popular set:        %d procedures, %d bytes\n", pop.Len(), pop.TotalSize(prog))
	fmt.Printf("avg Q population:   %.1f procedures (bound %dB)\n", res.AvgQProcs, 2**cacheBytes)
	fmt.Printf("TRG_select:         %d nodes, %d edges\n", res.Select.NumNodes(), res.Select.NumEdges())
	fmt.Printf("TRG_place:          %d chunks, %d edges\n", res.Place.NumNodes(), res.Place.NumEdges())

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		err = res.Select.WriteDOT(f, "trg_select", func(n graph.NodeID) string {
			return prog.Name(program.ProcID(n))
		}, *dotMin)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("TRG_select DOT:     %s\n", *dotPath)
	}

	type hot struct {
		id program.ProcID
		n  int64
	}
	var hots []hot
	for p, n := range stats.PerProc {
		if n > 0 {
			hots = append(hots, hot{program.ProcID(p), n})
		}
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].n != hots[j].n {
			return hots[i].n > hots[j].n
		}
		return hots[i].id < hots[j].id
	})
	if len(hots) > *top {
		hots = hots[:*top]
	}
	fmt.Printf("\nhottest procedures:\n")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "procedure\tactivations\tsize\tpopular")
	for _, h := range hots {
		mark := ""
		if pop.Contains(h.id) {
			mark = "*"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\n", prog.Name(h.id), h.n, prog.Size(h.id), mark)
	}
	return tw.Flush()
}
