// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON report on stdout, recording ns/op, B/op and
// allocs/op per benchmark. The Makefile's bench-json target pipes the GBSC
// merge-loop benchmarks through it to produce BENCH_gbsc.json, the
// committed record of the placement hot-path perf trajectory:
//
//	go test -run '^$' -bench 'BenchmarkMergeNodes' -benchmem . | benchjson
//
// Exit status: 0 on success, 1 when stdin holds no benchmark lines or
// cannot be parsed.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. "events/sec" from the
	// TRG ingest benchmarks) keyed by the unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	if err := run(); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

func run() error {
	rep, err := parse(os.Stdin)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parse reads `go test -bench` output. Benchmark lines have the shape
//
//	BenchmarkName[-P]  iterations  value unit  [value unit ...]
//
// with units ns/op, B/op, allocs/op and MB/s; custom b.ReportMetric units
// are captured into the extra map; header lines carry the goos/goarch/
// pkg/cpu context.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkFoo ... --- SKIP" shapes
		}
		b := Benchmark{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = int64(val)
			case "allocs/op":
				b.AllocsPerOp = int64(val)
			case "MB/s":
				b.MBPerSec = val
			default:
				// Custom b.ReportMetric units pass through verbatim.
				if b.Extra == nil {
					b.Extra = map[string]float64{}
				}
				b.Extra[fields[i+1]] = val
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin; pipe `go test -bench` output")
	}
	return rep, nil
}
