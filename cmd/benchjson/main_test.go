package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkHeaviestEdge     	       3	   3630278 ns/op	  466032 B/op	      81 allocs/op
BenchmarkBestAlignment    	    6000	    196793 ns/op	       0 B/op	       0 allocs/op
BenchmarkThroughput       	     100	      1234 ns/op	 512.50 MB/s
BenchmarkTRGBuildSharded8 	       3	 193043968 ns/op	  777051 events/sec
PASS
ok  	repro	2.345s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro" {
		t.Errorf("header = %q/%q/%q", rep.Goos, rep.Goarch, rep.Pkg)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	he := rep.Benchmarks[0]
	if he.Name != "BenchmarkHeaviestEdge" || he.Iterations != 3 ||
		he.NsPerOp != 3630278 || he.BytesPerOp != 466032 || he.AllocsPerOp != 81 {
		t.Errorf("HeaviestEdge parsed as %+v", he)
	}
	ba := rep.Benchmarks[1]
	if ba.BytesPerOp != 0 || ba.AllocsPerOp != 0 || ba.NsPerOp != 196793 {
		t.Errorf("BestAlignment parsed as %+v", ba)
	}
	if tp := rep.Benchmarks[2]; tp.MBPerSec != 512.50 {
		t.Errorf("MB/s parsed as %+v", tp)
	}
	if tr := rep.Benchmarks[3]; tr.Extra["events/sec"] != 777051 {
		t.Errorf("events/sec parsed as %+v", tr)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("want error on input with no benchmark lines")
	}
}

func TestParseRejectsGarbageValue(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX 5 abc ns/op\n")); err == nil {
		t.Fatal("want error on unparsable value")
	}
}
